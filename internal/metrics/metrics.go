// Package metrics is the simulator's observability layer: a lightweight,
// zero-dependency registry of named counters, gauges, fixed-bucket
// histograms and epoch series, designed for cycle-accurate hot paths.
//
// Two properties drive the design (they are what Ramulator 2's built-in
// per-component statistics get right, and what ad-hoc printf counters get
// wrong):
//
//   - Collection is allocation-free on the hot path. A component asks the
//     registry for its instruments once, at construction, and then updates
//     them through plain struct mutations — no map lookups, no interface
//     dispatch, no boxing.
//
//   - Disabled collection costs ~nothing. Every instrument method is
//     nil-receiver-safe: a nil *Registry hands out nil handles, and
//     Inc/Add/Set/Observe on a nil handle is a single predictable branch.
//     Instrumented code therefore never guards updates with its own
//     "are stats on?" checks, and no dummy sink is shared across
//     goroutines (which would be a data race under parallel sweeps).
//
// Determinism: instruments carry no wall-clock state, and Snapshot
// serializes with sorted names, so two runs of a deterministic simulation
// produce bit-identical snapshots regardless of worker count or host load.
// The experiment engine's wall-clock Timer (internal/engine) is deliberately
// kept outside this package for that reason.
//
// OBSERVABILITY.md documents the metric namespace the simulator registers
// and the JSON report format built on these snapshots.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Counter is a monotonically increasing uint64 instrument. The zero value
// is ready to use; a nil *Counter ignores updates and reads as 0.
type Counter struct{ v uint64 }

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-value-wins float64 instrument. A nil *Gauge ignores
// updates and reads as 0.
type Gauge struct{ v float64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Add increments the value.
func (g *Gauge) Add(v float64) {
	if g != nil {
		g.v += v
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a fixed-bucket histogram: bucket i counts samples in
// [i·Width, (i+1)·Width); samples beyond the last bucket land in Overflow.
// A nil *Histogram ignores observations.
type Histogram struct {
	width    float64
	invWidth float64 // 1/width: Observe multiplies instead of divides (hot path)
	counts   []uint64
	overflow uint64
	samples  uint64
	sum      float64
}

// NewHistogram creates a histogram with n buckets of the given width. It
// panics on a non-positive shape, which is always a construction-site bug.
func NewHistogram(n int, width float64) *Histogram {
	if n <= 0 || width <= 0 {
		panic(fmt.Sprintf("metrics: invalid histogram shape (%d buckets × %v width)", n, width))
	}
	return &Histogram{width: width, invWidth: 1 / width, counts: make([]uint64, n)}
}

// Observe records one sample. Negative samples clamp to the first bucket.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.samples++
	h.sum += v
	idx := int(v * h.invWidth)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.counts) {
		h.overflow++
		return
	}
	h.counts[idx]++
}

// ObserveN records the sample v, n times. It is exactly equivalent to
// calling Observe(v) n times — including the floating-point accumulation of
// the running sum — but costs O(1) when the closed form is provably exact
// (integral values within float64's exact-integer range, which covers the
// queue-occupancy samples the simulator's fast-forward path bulk-records).
// Otherwise it falls back to the loop.
func (h *Histogram) ObserveN(v float64, n uint64) {
	if h == nil || n == 0 {
		return
	}
	const exactLimit = float64(1 << 53)
	if v == math.Trunc(v) && h.sum == math.Trunc(h.sum) &&
		math.Abs(h.sum)+math.Abs(v)*float64(n) < exactLimit && n < 1<<53 {
		// Every partial sum along the way is an integer below 2^53, so
		// repeated float64 addition is exact and equals sum + n·v.
		h.samples += n
		h.sum += v * float64(n)
		idx := int(v * h.invWidth)
		if idx < 0 {
			idx = 0
		}
		if idx >= len(h.counts) {
			h.overflow += n
			return
		}
		h.counts[idx] += n
		return
	}
	for i := uint64(0); i < n; i++ {
		h.Observe(v)
	}
}

// Samples returns the number of recorded observations.
func (h *Histogram) Samples() uint64 {
	if h == nil {
		return 0
	}
	return h.samples
}

// Mean returns the exact mean of all observations (not bucket-quantized).
func (h *Histogram) Mean() float64 {
	if h == nil || h.samples == 0 {
		return 0
	}
	return h.sum / float64(h.samples)
}

// Percentile returns an approximate p-quantile (0 < p ≤ 1) assuming samples
// sit at their bucket midpoint. Overflow samples map to the top boundary.
func (h *Histogram) Percentile(p float64) float64 {
	if h == nil || h.samples == 0 {
		return 0
	}
	target := p * float64(h.samples)
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if float64(cum) >= target {
			return (float64(i) + 0.5) * h.width
		}
	}
	return float64(len(h.counts)) * h.width
}

// Snapshot returns the histogram's serializable state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		BucketWidth: h.width,
		Samples:     h.samples,
		Sum:         h.sum,
		Overflow:    h.overflow,
		Mean:        h.Mean(),
		P50:         h.Percentile(0.50),
		P90:         h.Percentile(0.90),
		P99:         h.Percentile(0.99),
	}
	// Sparse encoding: only non-empty buckets, in index order. Latency
	// histograms over cycle-accurate models are almost empty almost
	// everywhere, and a dense dump would dominate the report.
	for i, c := range h.counts {
		if c != 0 {
			s.Buckets = append(s.Buckets, HistogramBucket{Index: i, Count: c})
		}
	}
	return s
}

// HistogramBucket is one non-empty bucket of a snapshot.
type HistogramBucket struct {
	Index int    `json:"index"` // bucket covers [index·width, (index+1)·width)
	Count uint64 `json:"count"`
}

// HistogramSnapshot is the serializable state of a histogram, with summary
// quantiles precomputed so consumers need no bucket math.
type HistogramSnapshot struct {
	BucketWidth float64           `json:"bucket_width"`
	Samples     uint64            `json:"samples"`
	Sum         float64           `json:"sum"`
	Overflow    uint64            `json:"overflow"`
	Mean        float64           `json:"mean"`
	P50         float64           `json:"p50"`
	P90         float64           `json:"p90"`
	P99         float64           `json:"p99"`
	Buckets     []HistogramBucket `json:"buckets,omitempty"`
}

// Registry hands out named instruments and snapshots them. It is not
// goroutine-safe: one registry belongs to one simulated system, which is
// single-threaded by construction (parallel sweeps give every run its own
// registry). A nil *Registry is the disabled collector: it returns nil
// handles everywhere and snapshots empty.
type Registry struct {
	prefix     string
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	series     map[string]*EpochSeries
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		series:     map[string]*EpochSeries{},
	}
}

// Sub returns a view of the registry that prefixes every instrument name
// with prefix + ".". Sub of a nil registry is nil, so components can scope
// unconditionally.
func (r *Registry) Sub(prefix string) *Registry {
	if r == nil {
		return nil
	}
	s := *r
	if s.prefix != "" {
		s.prefix += "."
	}
	s.prefix += prefix
	return &s
}

func (r *Registry) name(n string) string {
	if r.prefix == "" {
		return n
	}
	return r.prefix + "." + n
}

// Counter returns the named counter, creating it on first use. Successive
// calls with the same name return the same instrument.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	n := r.name(name)
	c, ok := r.counters[n]
	if !ok {
		c = &Counter{}
		r.counters[n] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	n := r.name(name)
	g, ok := r.gauges[n]
	if !ok {
		g = &Gauge{}
		r.gauges[n] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given shape on
// first use. The shape of an existing histogram is left untouched.
func (r *Registry) Histogram(name string, buckets int, width float64) *Histogram {
	if r == nil {
		return nil
	}
	n := r.name(name)
	h, ok := r.histograms[n]
	if !ok {
		h = NewHistogram(buckets, width)
		r.histograms[n] = h
	}
	return h
}

// Series returns the named epoch series, creating it with the given interval
// on first use.
func (r *Registry) Series(name string, interval int64) *EpochSeries {
	if r == nil {
		return nil
	}
	n := r.name(name)
	s, ok := r.series[n]
	if !ok {
		s = NewEpochSeries(interval)
		r.series[n] = s
	}
	return s
}

// Snapshot captures every instrument. The result marshals deterministically:
// encoding/json sorts map keys, and all values are plain numbers.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Series     map[string]SeriesSnapshot    `json:"series,omitempty"`
}

// Snapshot captures the current value of every instrument in the registry
// (the full registry, regardless of which Sub view is called).
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]uint64, len(r.counters))
		for n, c := range r.counters {
			s.Counters[n] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for n, g := range r.gauges {
			s.Gauges[n] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for n, h := range r.histograms {
			s.Histograms[n] = h.Snapshot()
		}
	}
	if len(r.series) > 0 {
		s.Series = make(map[string]SeriesSnapshot, len(r.series))
		for n, e := range r.series {
			s.Series[n] = e.Snapshot()
		}
	}
	return s
}

// WriteText renders the snapshot human-readably, sorted by name, one
// instrument per line, indented by the given prefix.
func (s Snapshot) WriteText(w io.Writer, indent string) error {
	for _, n := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "%s%-46s %d\n", indent, n, s.Counters[n]); err != nil {
			return err
		}
	}
	for _, n := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "%s%-46s %g\n", indent, n, s.Gauges[n]); err != nil {
			return err
		}
	}
	for _, n := range sortedKeys(s.Histograms) {
		h := s.Histograms[n]
		if _, err := fmt.Fprintf(w, "%s%-46s n=%d mean=%.1f p50=%.1f p90=%.1f p99=%.1f overflow=%d\n",
			indent, n, h.Samples, h.Mean, h.P50, h.P90, h.P99, h.Overflow); err != nil {
			return err
		}
	}
	for _, n := range sortedKeys(s.Series) {
		e := s.Series[n]
		if _, err := fmt.Fprintf(w, "%s%-46s epochs=%d interval=%d\n",
			indent, n, len(e.Deltas), e.Interval); err != nil {
			return err
		}
	}
	return nil
}

// MarshalJSONDeterministic is json.Marshal with the stdlib's sorted-map-key
// guarantee made explicit at the call site: byte-identical snapshots for
// value-identical registries.
func (s Snapshot) MarshalJSONDeterministic() ([]byte, error) {
	return json.Marshal(s)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
