package metrics

import "testing"

// The hot-path contract: updating an instrument, enabled or disabled, never
// allocates. TestHotPathAllocFree enforces it; the benchmarks quantify the
// per-update cost (a counter increment should be ~1 ns, a nil no-op less).

func TestHotPathAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", 64, 4)
	var nilC *Counter
	var nilH *Histogram
	for name, fn := range map[string]func(){
		"counter":       func() { c.Inc() },
		"gauge":         func() { g.Set(1) },
		"histogram":     func() { h.Observe(17) },
		"nil-counter":   func() { nilC.Inc() },
		"nil-histogram": func() { nilH.Observe(17) },
	} {
		if allocs := testing.AllocsPerRun(1000, fn); allocs != 0 {
			t.Errorf("%s update allocates %.0f objects per op, want 0", name, allocs)
		}
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h", 512, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 2048))
	}
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 2048))
	}
}

func BenchmarkEpochSeriesObserve(b *testing.B) {
	e := NewEpochSeries(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Observe(int64(i), float64(i))
	}
}
