package metrics

// EpochSeries turns a cumulative counter into a per-epoch delta series: the
// caller reports (cycle, cumulative) pairs — typically once per simulated
// cycle — and the series records one delta per completed interval. It is how
// the simulator produces per-epoch IPC curves without storing per-cycle
// state: O(totalCycles / interval) memory, one comparison per call on the
// hot path.
//
// A nil *EpochSeries ignores observations, matching the package's disabled-
// collector convention.
type EpochSeries struct {
	interval int64
	nextAt   int64
	lastCum  float64
	deltas   []float64
}

// NewEpochSeries creates a series that closes an epoch every interval units
// of the caller's clock. It panics on a non-positive interval.
func NewEpochSeries(interval int64) *EpochSeries {
	if interval <= 0 {
		panic("metrics: non-positive epoch interval")
	}
	return &EpochSeries{interval: interval, nextAt: interval}
}

// Observe reports the cumulative value at the given clock. Clocks must be
// non-decreasing across calls. When the clock crosses one or more epoch
// boundaries, the cumulative delta since the previous boundary is split
// evenly across the completed epochs (cheap, and exact when the caller
// observes every cycle).
func (e *EpochSeries) Observe(clock int64, cumulative float64) {
	if e == nil || clock < e.nextAt {
		return
	}
	crossed := (clock-e.nextAt)/e.interval + 1
	delta := (cumulative - e.lastCum) / float64(crossed)
	for i := int64(0); i < crossed; i++ {
		e.deltas = append(e.deltas, delta)
	}
	e.lastCum = cumulative
	e.nextAt += crossed * e.interval
}

// NextBoundary returns the clock value of the next epoch boundary — the
// smallest clock at which Observe would record at least one delta. Callers
// that advance the clock in bulk (the simulator's fast-forward path) use it
// to reproduce the per-cycle observation sequence exactly: observing at each
// boundary clock with the cumulative value that held there is bit-identical
// to observing every cycle. A nil series reports a boundary that is never
// reached.
func (e *EpochSeries) NextBoundary() int64 {
	if e == nil {
		return int64(1) << 62
	}
	return e.nextAt
}

// Interval returns the epoch length (0 for a nil series).
func (e *EpochSeries) Interval() int64 {
	if e == nil {
		return 0
	}
	return e.interval
}

// Deltas returns the per-epoch deltas recorded so far. The returned slice is
// the series' backing store; callers must not mutate it.
func (e *EpochSeries) Deltas() []float64 {
	if e == nil {
		return nil
	}
	return e.deltas
}

// SeriesSnapshot is the serializable state of an epoch series.
type SeriesSnapshot struct {
	Interval int64     `json:"interval"`
	Deltas   []float64 `json:"deltas,omitempty"`
}

// Snapshot captures the series.
func (e *EpochSeries) Snapshot() SeriesSnapshot {
	if e == nil {
		return SeriesSnapshot{}
	}
	return SeriesSnapshot{Interval: e.interval, Deltas: append([]float64(nil), e.deltas...)}
}
