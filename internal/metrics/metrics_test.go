package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("acts")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("acts") != c {
		t.Fatal("same name must return the same counter")
	}
	g := r.Gauge("ipc")
	g.Set(1.5)
	g.Add(0.5)
	if got := g.Value(); got != 2.0 {
		t.Fatalf("gauge = %v, want 2.0", got)
	}
}

func TestNilRegistryAndHandlesAreSafe(t *testing.T) {
	var r *Registry
	if r.Sub("mem") != nil {
		t.Fatal("Sub of nil registry must be nil")
	}
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", 8, 1)
	s := r.Series("w", 10)
	if c != nil || g != nil || h != nil || s != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	// None of these may panic, and all reads must be zero.
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(5)
	s.Observe(100, 42)
	if c.Value() != 0 || g.Value() != 0 || h.Samples() != 0 || h.Mean() != 0 ||
		h.Percentile(0.5) != 0 || len(s.Deltas()) != 0 || s.Interval() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	if snap := r.Snapshot(); snap.Counters != nil || snap.Gauges != nil ||
		snap.Histograms != nil || snap.Series != nil {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestSubPrefixing(t *testing.T) {
	r := NewRegistry()
	r.Sub("mem").Sub("ch0").Counter("rowbuffer.hits").Add(7)
	snap := r.Snapshot()
	if snap.Counters["mem.ch0.rowbuffer.hits"] != 7 {
		t.Fatalf("prefixed counter missing: %v", snap.Counters)
	}
	// Sub views share the parent's instrument space.
	if r.Sub("mem.ch0").Counter("rowbuffer.hits").Value() != 7 {
		t.Fatal("sub view must resolve to the same instrument")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 2) // buckets [0,2) [2,4) ... [18,20)
	for _, v := range []float64{1, 3, 3, 19, 25, -1} {
		h.Observe(v)
	}
	if h.Samples() != 6 {
		t.Fatalf("samples = %d, want 6", h.Samples())
	}
	snap := h.Snapshot()
	if snap.Overflow != 1 {
		t.Fatalf("overflow = %d, want 1 (sample 25)", snap.Overflow)
	}
	// Negative sample clamps into bucket 0 alongside the 1.
	want := map[int]uint64{0: 2, 1: 2, 9: 1}
	if len(snap.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %v", snap.Buckets, want)
	}
	for _, b := range snap.Buckets {
		if want[b.Index] != b.Count {
			t.Fatalf("bucket %d = %d, want %d", b.Index, b.Count, want[b.Index])
		}
	}
	if got := h.Mean(); got != 50.0/6 {
		t.Fatalf("mean = %v, want %v", got, 50.0/6)
	}
	if p := h.Percentile(0.5); p != 3 { // 3rd of 6 samples sits in bucket 1, midpoint 3
		t.Fatalf("p50 = %v, want 3", p)
	}
}

func TestHistogramInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on zero-bucket histogram")
		}
	}()
	NewHistogram(0, 1)
}

func TestEpochSeries(t *testing.T) {
	e := NewEpochSeries(100)
	for cycle := int64(0); cycle < 250; cycle++ {
		e.Observe(cycle, float64(2*cycle)) // slope 2 → delta 200 per epoch
	}
	deltas := e.Deltas()
	if len(deltas) != 2 {
		t.Fatalf("epochs = %d, want 2 (cycle 249 has not closed the third)", len(deltas))
	}
	for i, d := range deltas {
		if d != 200 {
			t.Fatalf("epoch %d delta = %v, want 200", i, d)
		}
	}
}

func TestEpochSeriesSkippedBoundaries(t *testing.T) {
	// Observing only every 250 cycles still yields one delta per epoch,
	// with the cumulative growth split evenly across crossed epochs.
	e := NewEpochSeries(100)
	e.Observe(250, 500)
	if got := e.Deltas(); len(got) != 2 || got[0] != 250 || got[1] != 250 {
		t.Fatalf("deltas = %v, want [250 250]", got)
	}
	e.Observe(399, 800)
	if got := e.Deltas(); len(got) != 3 || got[2] != 300 {
		t.Fatalf("deltas = %v, want third epoch delta 300", got)
	}
}

func TestSnapshotDeterministicJSON(t *testing.T) {
	build := func() Snapshot {
		r := NewRegistry()
		// Register in one order...
		r.Counter("b").Add(2)
		r.Counter("a").Add(1)
		r.Gauge("z").Set(3)
		r.Histogram("h", 4, 1).Observe(2)
		r.Series("s", 10).Observe(25, 5)
		return r.Snapshot()
	}
	build2 := func() Snapshot {
		r := NewRegistry()
		// ...and the reverse order: the JSON must not change.
		r.Series("s", 10).Observe(25, 5)
		r.Histogram("h", 4, 1).Observe(2)
		r.Gauge("z").Set(3)
		r.Counter("a").Add(1)
		r.Counter("b").Add(2)
		return r.Snapshot()
	}
	j1, err := build().MarshalJSONDeterministic()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := build2().MarshalJSONDeterministic()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("snapshot JSON depends on registration order:\n%s\n%s", j1, j2)
	}
}

func TestSnapshotWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("mem.reads").Add(10)
	r.Gauge("cpu.ipc").Set(1.25)
	r.Histogram("mem.latency", 8, 4).Observe(6)
	r.Series("ipc", 100).Observe(150, 80)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteText(&buf, "  "); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"mem.reads", "10", "cpu.ipc", "1.25", "mem.latency", "n=1", "epochs=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text snapshot missing %q:\n%s", want, out)
		}
	}
}
