// Package cache implements the shared last-level cache of the evaluated
// system (paper Table 2): 8 MiB, 8-way set associative, 64-byte lines, LRU
// replacement, write-back/write-allocate, with MSHR-style miss merging.
//
// The cache is a passive structure: the system simulator (package sim)
// drives it and forwards misses/writebacks to the memory controller.
package cache

import (
	"fmt"
	"math/bits"
)

// Config describes the cache geometry and behaviour.
type Config struct {
	SizeBytes  int // total capacity, default 8 MiB
	Ways       int // associativity, default 8
	LineBytes  int // default 64
	HitLatency int // CPU cycles from access to data for a hit, default 30
	MSHRs      int // outstanding distinct line misses, default 64
}

// Defaults fills zero fields with the paper's Table 2 configuration.
func (c Config) Defaults() Config {
	if c.SizeBytes == 0 {
		c.SizeBytes = 8 << 20
	}
	if c.Ways == 0 {
		c.Ways = 8
	}
	if c.LineBytes == 0 {
		c.LineBytes = 64
	}
	if c.HitLatency == 0 {
		c.HitLatency = 30
	}
	if c.MSHRs == 0 {
		c.MSHRs = 64
	}
	return c
}

// Validate checks the geometry.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	sets := c.SizeBytes / (c.Ways * c.LineBytes)
	if sets <= 0 || sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d must be a positive power of two", sets)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d must be a power of two", c.LineBytes)
	}
	return nil
}

// Outcome classifies an access.
type Outcome int

// Access outcomes.
const (
	// Hit: data present; completes after HitLatency.
	Hit Outcome = iota
	// Miss: a new miss; the caller must fetch the line from memory and call
	// Fill when it arrives.
	Miss
	// MergedMiss: the line is already being fetched; the access was merged
	// into the existing MSHR and completes when that fetch fills.
	MergedMiss
	// Rejected: no MSHR available; the caller must retry later.
	Rejected
)

// String names the outcome.
func (o Outcome) String() string {
	return [...]string{"hit", "miss", "merged-miss", "rejected"}[o]
}

// Stats counts cache events.
type Stats struct {
	Hits       uint64
	Misses     uint64 // distinct line fetches (MSHR allocations)
	Merged     uint64
	Rejected   uint64
	Writebacks uint64
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	used  uint64 // LRU timestamp
}

type mshr struct {
	lineAddr uint64
	waiters  []func()
	dirty    bool // a store merged into this miss: mark dirty on fill
}

// Cache is the LLC model.
type Cache struct {
	cfg      Config
	sets     [][]line
	setMask  uint64
	lineBits uint
	tick     uint64
	mshrs    map[uint64]*mshr
	st       Stats
}

// New builds a cache; it panics on invalid configuration.
func New(cfg Config) *Cache {
	cfg = cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.SizeBytes / (cfg.Ways * cfg.LineBytes)
	sets := make([][]line, nsets)
	backing := make([]line, nsets*cfg.Ways)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	return &Cache{
		cfg:      cfg,
		sets:     sets,
		setMask:  uint64(nsets - 1),
		lineBits: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		mshrs:    make(map[uint64]*mshr),
	}
}

// Config returns the (defaulted) configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.st }

// LineAddr returns the line-aligned address of addr.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr &^ (uint64(c.cfg.LineBytes) - 1) }

func (c *Cache) locate(lineAddr uint64) (set uint64, tag uint64) {
	idx := lineAddr >> c.lineBits
	return idx & c.setMask, idx >> uint(bits.TrailingZeros(uint(len(c.sets))))
}

// InflightMisses returns the number of allocated MSHRs.
func (c *Cache) InflightMisses() int { return len(c.mshrs) }

// Access looks up addr. For Miss the caller must fetch c.LineAddr(addr) from
// memory and call Fill when the data returns; onFill (if non-nil) is
// remembered and invoked at Fill time for both Miss and MergedMiss. For Hit
// the data is available after HitLatency CPU cycles (the caller schedules
// that delay). write marks the line dirty (write-allocate on miss).
func (c *Cache) Access(addr uint64, write bool, onFill func()) Outcome {
	c.tick++
	lineAddr := c.LineAddr(addr)
	set, tag := c.locate(lineAddr)
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			ln.used = c.tick
			if write {
				ln.dirty = true
			}
			c.st.Hits++
			return Hit
		}
	}
	if m, ok := c.mshrs[lineAddr]; ok {
		if onFill != nil {
			m.waiters = append(m.waiters, onFill)
		}
		if write {
			m.dirty = true
		}
		c.st.Merged++
		return MergedMiss
	}
	if len(c.mshrs) >= c.cfg.MSHRs {
		c.st.Rejected++
		return Rejected
	}
	m := &mshr{lineAddr: lineAddr, dirty: write}
	if onFill != nil {
		m.waiters = append(m.waiters, onFill)
	}
	c.mshrs[lineAddr] = m
	c.st.Misses++
	return Miss
}

// Fill installs a fetched line, runs all merged waiters, and returns the
// evicted victim's line address if it was dirty (the caller must write it
// back to memory). ok=false means no victim writeback is needed.
func (c *Cache) Fill(lineAddr uint64) (victim uint64, needsWriteback bool) {
	m, okm := c.mshrs[lineAddr]
	if !okm {
		panic(fmt.Sprintf("cache: Fill(%#x) without a matching MSHR", lineAddr))
	}
	delete(c.mshrs, lineAddr)

	set, tag := c.locate(lineAddr)
	// Choose victim: invalid way first, else LRU.
	vi := 0
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if !ln.valid {
			vi = i
			break
		}
		if ln.used < c.sets[set][vi].used {
			vi = i
		}
	}
	v := &c.sets[set][vi]
	if v.valid && v.dirty {
		needsWriteback = true
		victim = c.reconstruct(set, v.tag)
		c.st.Writebacks++
	}
	c.tick++
	*v = line{tag: tag, valid: true, dirty: m.dirty, used: c.tick}
	for _, w := range m.waiters {
		w()
	}
	return victim, needsWriteback
}

// reconstruct rebuilds a line address from set index and tag.
func (c *Cache) reconstruct(set, tag uint64) uint64 {
	idx := tag<<uint(bits.TrailingZeros(uint(len(c.sets)))) | set
	return idx << c.lineBits
}

// Clone returns an independent deep copy of the cache: same configuration,
// line array, LRU clock, and statistics, sharing no mutable state with the
// original. It exists for checkpoint-and-fork warmup (sim's WarmupCache),
// which snapshots the warmed LLC once and forks it across every
// configuration of a sweep — so the statistics travel too (warmup hits and
// misses are part of a run's reported LLC counters). Cloning with misses in
// flight panics: an MSHR's waiters are closures over the original system.
func (c *Cache) Clone() *Cache {
	if len(c.mshrs) != 0 {
		panic(fmt.Sprintf("cache: Clone with %d misses in flight", len(c.mshrs)))
	}
	nc := *c
	backing := make([]line, len(c.sets)*c.cfg.Ways)
	nc.sets = make([][]line, len(c.sets))
	for i := range nc.sets {
		dst := backing[i*c.cfg.Ways : (i+1)*c.cfg.Ways]
		copy(dst, c.sets[i])
		nc.sets[i] = dst
	}
	nc.mshrs = make(map[uint64]*mshr)
	return &nc
}

// Contains reports whether the line holding addr is resident (for tests).
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.locate(c.LineAddr(addr))
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			return true
		}
	}
	return false
}
