package cache

import (
	"testing"
)

// tiny returns a small cache: 4 sets x 2 ways x 64 B lines = 512 B.
func tiny() *Cache {
	return New(Config{SizeBytes: 512, Ways: 2, LineBytes: 64, MSHRs: 4})
}

func TestMissThenFillThenHit(t *testing.T) {
	c := tiny()
	filled := false
	if got := c.Access(0x100, false, func() { filled = true }); got != Miss {
		t.Fatalf("first access = %v, want miss", got)
	}
	if _, wb := c.Fill(c.LineAddr(0x100)); wb {
		t.Fatal("no writeback expected on a cold fill")
	}
	if !filled {
		t.Fatal("waiter not called on fill")
	}
	if got := c.Access(0x100, false, nil); got != Hit {
		t.Fatalf("after fill = %v, want hit", got)
	}
	if got := c.Access(0x13f, false, nil); got != Hit {
		t.Fatalf("same line, different offset = %v, want hit", got)
	}
}

func TestMergedMiss(t *testing.T) {
	c := tiny()
	calls := 0
	cb := func() { calls++ }
	if got := c.Access(0x200, false, cb); got != Miss {
		t.Fatal("want miss")
	}
	if got := c.Access(0x240-0x40, false, cb); got != MergedMiss { // same line
		t.Fatalf("second access to in-flight line = %v, want merged", got)
	}
	c.Fill(c.LineAddr(0x200))
	if calls != 2 {
		t.Fatalf("waiters called %d times, want 2", calls)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Merged != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMSHRExhaustionRejects(t *testing.T) {
	c := tiny()
	for i := 0; i < 4; i++ {
		if got := c.Access(uint64(i)*64, false, nil); got != Miss {
			t.Fatalf("access %d = %v, want miss", i, got)
		}
	}
	if got := c.Access(4*64, false, nil); got != Rejected {
		t.Fatalf("5th distinct miss = %v, want rejected", got)
	}
	if c.InflightMisses() != 4 {
		t.Fatalf("InflightMisses = %d", c.InflightMisses())
	}
}

func TestLRUEvictionAndWriteback(t *testing.T) {
	c := tiny() // 4 sets → set = (addr>>6)&3; same set every 256 bytes
	// Fill both ways of set 0, first line dirty.
	c.Access(0x000, true, nil)
	c.Fill(0x000)
	c.Access(0x100, false, nil)
	c.Fill(0x100)
	// Touch 0x000 so 0x100 becomes LRU.
	if got := c.Access(0x000, false, nil); got != Hit {
		t.Fatal("0x000 should hit")
	}
	// Allocate a third line in set 0: evicts 0x100 (clean, no writeback).
	c.Access(0x200, false, nil)
	if victim, wb := c.Fill(0x200); wb {
		t.Fatalf("clean eviction should not write back (victim %#x)", victim)
	}
	if c.Contains(0x100) {
		t.Fatal("0x100 should have been evicted (LRU)")
	}
	if !c.Contains(0x000) {
		t.Fatal("0x000 (recently used) should survive")
	}
	// Fourth line evicts dirty 0x000: writeback required, correct address.
	c.Access(0x300, false, nil)
	victim, wb := c.Fill(0x300)
	if !wb || victim != 0x000 {
		t.Fatalf("dirty eviction: wb=%v victim=%#x, want true/0x0", wb, victim)
	}
}

func TestWriteAllocateMarksDirty(t *testing.T) {
	c := tiny()
	c.Access(0x000, true, nil) // store miss
	c.Fill(0x000)
	c.Access(0x100, false, nil)
	c.Fill(0x100)
	// Third line in set 0 evicts the LRU line 0x000, which the store made
	// dirty: must write back.
	c.Access(0x200, false, nil)
	victim, wb := c.Fill(0x200)
	if !wb || victim != 0x000 {
		t.Fatalf("write-allocated line should be dirty: wb=%v victim=%#x", wb, victim)
	}
}

func TestStoreMergeMarksDirty(t *testing.T) {
	c := tiny()
	c.Access(0x000, false, nil) // load miss
	c.Access(0x000, true, nil)  // store merged into the same MSHR
	c.Fill(0x000)
	c.Access(0x100, false, nil)
	c.Fill(0x100)
	c.Access(0x200, false, nil)
	victim, wb := c.Fill(0x200) // evicts LRU 0x000, dirtied by the merge
	if !wb || victim != 0x000 {
		t.Fatalf("line dirtied by a merged store must write back: wb=%v victim=%#x", wb, victim)
	}
}

func TestFillWithoutMSHRPanics(t *testing.T) {
	c := tiny()
	defer func() {
		if recover() == nil {
			t.Fatal("Fill without MSHR should panic")
		}
	}()
	c.Fill(0x40)
}

func TestDefaultsMatchPaperTable2(t *testing.T) {
	cfg := Config{}.Defaults()
	if cfg.SizeBytes != 8<<20 || cfg.Ways != 8 || cfg.LineBytes != 64 {
		t.Fatalf("defaults %+v do not match Table 2 (8 MiB, 8-way, 64 B)", cfg)
	}
	c := New(Config{})
	if len(c.sets) != (8<<20)/(8*64) {
		t.Fatalf("set count = %d", len(c.sets))
	}
}

func TestVictimAddressRoundTrip(t *testing.T) {
	c := New(Config{SizeBytes: 1 << 14, Ways: 2, LineBytes: 64, MSHRs: 8})
	// A line's reconstructed victim address must map back to the same set
	// and tag.
	addrs := []uint64{0x0, 0x40, 0x1000, 0xdeadbe40, 0x7fffffc0}
	for _, a := range addrs {
		la := c.LineAddr(a)
		set, tag := c.locate(la)
		if got := c.reconstruct(set, tag); got != la {
			t.Fatalf("reconstruct(%#x) = %#x", la, got)
		}
	}
}

func TestHitRateOnLoop(t *testing.T) {
	// A working set that fits the cache should be all hits after warmup.
	c := New(Config{SizeBytes: 1 << 14, Ways: 4, LineBytes: 64, MSHRs: 64})
	lines := (1 << 14) / 64
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < lines; i++ {
			addr := uint64(i * 64)
			out := c.Access(addr, false, nil)
			if pass == 0 && out == Miss {
				c.Fill(addr)
			} else if pass > 0 && out != Hit {
				t.Fatalf("pass %d line %d: %v, want hit", pass, i, out)
			}
		}
	}
}
