// Autotune shows the Advisor — this library's implementation of the
// capacity-vs-latency decision the paper leaves to system software (§6.1):
// profile a workload briefly on the baseline, feed the measured MPKI,
// footprint and page-access concentration to the advisor, and run the
// recommended CLR-DRAM configuration. The result is compared against the
// naive extremes (everything max-capacity / everything high-performance).
package main

import (
	"context"
	"fmt"
	"log"

	"clrdram"
)

func main() {
	opts := clrdram.DefaultOptions()
	opts.TargetInstructions = 120_000

	// A 16 GiB DIMM and a selection of workloads with different characters.
	adv := clrdram.NewAdvisor(16 << 30)

	for _, name := range []string{
		"429.mcf-like",    // intensive, near-uniform access
		"450.soplex-like", // intensive, heavily skewed access
		"456.hmmer-like",  // cache-resident
	} {
		w, ok := clrdram.WorkloadByName(name)
		if !ok {
			log.Fatalf("workload %s not found", name)
		}

		// Step 1 — profile on the baseline.
		base, err := runSingle(w, clrdram.Baseline(), opts)
		if err != nil {
			log.Fatal(err)
		}
		demand := clrdram.Demand{
			FootprintBytes: w.FootprintBytes(),
			MPKI:           base.PerCore[0].MPKI(),
			Coverage:       w.CoverageOfTopFraction,
		}

		// Step 2 — ask the advisor.
		cfg := adv.Recommend(demand)
		cfg.REFWms = adv.RecommendREFW(demand, nil)

		// Step 3 — run the recommendation and the naive extremes.
		rec, err := runSingle(w, cfg, opts)
		if err != nil {
			log.Fatal(err)
		}
		full, err := runSingle(w, clrdram.CLR(1.0), opts)
		if err != nil {
			log.Fatal(err)
		}

		speedup := func(r clrdram.Result) float64 {
			return r.PerCore[0].IPC() / base.PerCore[0].IPC()
		}
		fmt.Printf("%-20s MPKI %5.1f  advisor: %s\n", name, demand.MPKI, cfg)
		fmt.Printf("  speedup: advisor %.3fx vs all-HP %.3fx;"+
			" capacity kept: advisor %.0f%% vs all-HP 50%%\n",
			speedup(rec), speedup(full),
			clrdram.CapacityFactor(cfg.HPFraction)*100)
	}
	fmt.Println("\nThe advisor matches all-HP performance where it matters while")
	fmt.Println("keeping capacity when the workload cannot use low-latency rows.")
}

// runSingle drives one single-core simulation through the unified Run API.
func runSingle(p clrdram.Profile, cfg clrdram.Config, opts clrdram.Options) (clrdram.Result, error) {
	out, err := clrdram.Run(context.Background(), clrdram.SingleSpec(p, cfg), clrdram.WithOptions(opts))
	if err != nil {
		return clrdram.Result{}, err
	}
	return *out.Single, nil
}
