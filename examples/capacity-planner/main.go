// Capacity-planner demonstrates the capability in the paper's title:
// *dynamic* capacity-latency trade-off. One live system runs a workload
// through three phases with different memory demands; at each phase
// boundary the planner reconfigures the high-performance row fraction
// (§3.2: a row's mode changes at its next activation) and the simulator
// charges the real data-migration cost of moving pages between
// max-capacity and high-performance frames.
package main

import (
	"fmt"
	"log"

	"clrdram"
)

func main() {
	// A memory-intensive workload on a single live system. The instruction
	// target is effectively unbounded; phases are paced with RunFor.
	w, ok := clrdram.WorkloadByName("random_02")
	if !ok {
		log.Fatal("workload not found")
	}
	opts := clrdram.DefaultOptions()
	opts.TargetInstructions = 1 << 62

	sys, err := clrdram.NewSystem([]clrdram.Profile{w}, clrdram.CLR(0), opts)
	if err != nil {
		log.Fatal(err)
	}

	phases := []struct {
		name string
		// capacity demand decides the affordable HP fraction (§6.1).
		footprintFrac float64
		hpFraction    float64
	}{
		{"capacity-hungry batch", 0.90, 0.0},
		{"balanced serving", 0.60, 0.75},
		{"latency-critical burst", 0.30, 1.0},
		{"back to batch", 0.90, 0.0},
	}

	const phaseInstructions = 60_000
	prevRetired, prevCycles := uint64(0), int64(0)
	for _, ph := range phases {
		cfg := clrdram.CLR(ph.hpFraction)
		rec, err := sys.Reconfigure(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res := sys.RunFor(phaseInstructions)
		retired := res.PerCore[0].Instructions
		cycles := res.CPUCycles
		// Phase IPC excludes the stop-the-world migration cycles, which are
		// reported separately as the switch cost.
		ipc := float64(retired-prevRetired) / float64(cycles-prevCycles-rec.MigrationCycles)
		prevRetired, prevCycles = retired, cycles

		fmt.Printf("phase %-24s → %s\n", ph.name, cfg)
		fmt.Printf("  demand: %.0f%% of capacity; usable now: %.0f%%\n",
			ph.footprintFrac*100, clrdram.CapacityFactor(ph.hpFraction)*100)
		fmt.Printf("  switch cost: %d pages (%d lines) migrated in %d CPU cycles\n",
			rec.MigratedPages, rec.MigratedLines, rec.MigrationCycles)
		fmt.Printf("  phase IPC: %.3f\n\n", ipc)
	}

	fmt.Println("The same DIMM serves a capacity phase at full density and a latency")
	fmt.Println("phase at half density — switching costs a bounded page migration,")
	fmt.Println("not a hardware change (CLR-DRAM's dynamic trade-off, paper §1).")
}
