// Quickstart: simulate one memory-intensive workload on baseline DDR4 and
// on CLR-DRAM with every row in high-performance mode, and compare
// performance and DRAM energy — the paper's headline experiment in ~30
// lines of API use.
package main

import (
	"context"
	"fmt"
	"log"

	"clrdram"
)

func main() {
	// Pick a workload from the paper's evaluation set.
	mcf, ok := clrdram.WorkloadByName("429.mcf-like")
	if !ok {
		log.Fatal("workload not found")
	}

	opts := clrdram.DefaultOptions()
	opts.TargetInstructions = 200_000 // scale to taste; paper uses 200 M

	base, err := runSingle(mcf, clrdram.Baseline(), opts)
	if err != nil {
		log.Fatal(err)
	}
	fast, err := runSingle(mcf, clrdram.CLR(1.0), opts)
	if err != nil {
		log.Fatal(err)
	}

	bIPC, fIPC := base.PerCore[0].IPC(), fast.PerCore[0].IPC()
	fmt.Printf("workload: %s (MPKI %.1f)\n", mcf.Name, base.PerCore[0].MPKI())
	fmt.Printf("baseline DDR4:        IPC %.3f, DRAM energy %.1f µJ\n", bIPC, base.Energy.Total()/1e6)
	fmt.Printf("CLR-DRAM (100%% HP):   IPC %.3f, DRAM energy %.1f µJ\n", fIPC, fast.Energy.Total()/1e6)
	fmt.Printf("speedup: %.1f%%   energy saving: %.1f%%\n",
		(fIPC/bIPC-1)*100, (1-fast.Energy.Total()/base.Energy.Total())*100)

	// The cost: half the storage capacity and a little silicon.
	fmt.Printf("capacity factor at 100%% HP rows: %.0f%%\n", clrdram.CapacityFactor(1.0)*100)
	_, _, area := clrdram.DefaultAreaModel().Overhead()
	fmt.Printf("chip area overhead: %.1f%%\n", area*100)
}

// runSingle drives one single-core simulation through the unified Run API.
func runSingle(p clrdram.Profile, cfg clrdram.Config, opts clrdram.Options) (clrdram.Result, error) {
	out, err := clrdram.Run(context.Background(), clrdram.SingleSpec(p, cfg), clrdram.WithOptions(opts))
	if err != nil {
		return clrdram.Result{}, err
	}
	return *out.Single, nil
}
