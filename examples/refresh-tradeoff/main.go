// Refresh-tradeoff explores the paper's §8.5 experiment: coupled cells have
// roughly twice the charge of a single cell, so high-performance rows can
// extend the refresh window (tREFW) from 64 ms up to ~194 ms — paying a
// small activation-latency penalty (Figure 11) for a large refresh-energy
// saving (Figure 15).
package main

import (
	"context"
	"fmt"
	"log"

	"clrdram"
)

func main() {
	// Part 1 — the circuit-level trade-off: regenerate the Figure 11 curve
	// from the transient subarray model.
	tab, err := clrdram.BuildTimingTable(clrdram.DefaultCircuitParams(), 20, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 11 — activation latency vs refresh window (circuit model):")
	fmt.Printf("%10s %10s %10s\n", "tREFW(ms)", "tRCD(ns)", "tRAS(ns)")
	for _, pt := range tab.REFWCurve {
		if int(pt.Ms-64)%30 == 0 || pt.Ms == tab.MaxREFWms() {
			fmt.Printf("%10.0f %10.2f %10.2f\n", pt.Ms, pt.RCD, pt.RAS)
		}
	}
	fmt.Printf("sensing fails beyond %.0f ms (paper: ≈204 ms)\n\n", tab.MaxREFWms())

	// Part 2 — the system-level consequence: run a memory-intensive
	// workload at the paper's CLR-64 … CLR-194 settings (all rows HP).
	p, _ := clrdram.WorkloadByName("random_00")
	opts := clrdram.DefaultOptions()
	opts.TargetInstructions = 150_000

	base, err := runSingle(p, clrdram.Baseline(), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("System impact on random_00 (normalized to baseline DDR4):")
	fmt.Printf("%10s %10s %12s %14s\n", "setting", "speedup", "DRAM energy", "refresh energy")
	for _, refw := range []float64{64, 114, 124, 184, 194} {
		cfg := clrdram.CLR(1.0)
		cfg.REFWms = refw
		res, err := runSingle(p, cfg, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("CLR-%-6.0f %9.3fx %11.3fx %13.3fx\n", refw,
			res.PerCore[0].IPC()/base.PerCore[0].IPC(),
			res.Energy.Total()/base.Energy.Total(),
			res.Energy.Refresh/base.Energy.Refresh)
	}
	fmt.Println("\nLonger windows trade a little performance for large refresh-energy savings")
	fmt.Println("(paper: CLR-194 cuts refresh energy 87.1% and still outperforms DDR4 by 17.8%).")
}

// runSingle drives one single-core simulation through the unified Run API.
func runSingle(p clrdram.Profile, cfg clrdram.Config, opts clrdram.Options) (clrdram.Result, error) {
	out, err := clrdram.Run(context.Background(), clrdram.SingleSpec(p, cfg), clrdram.WithOptions(opts))
	if err != nil {
		return clrdram.Result{}, err
	}
	return *out.Single, nil
}
