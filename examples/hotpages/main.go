// Hotpages reproduces the paper's §8.2 page-mapping study on two workloads
// with opposite page-access concentration: a near-uniform one (libquantum-
// like) and a heavily skewed one (soplex-like). It sweeps the fraction of
// rows configured as high-performance and shows how the speedup scaling
// tracks the access-coverage curve — near-linear for uniform access,
// saturating early for skewed access (paper Figure 12, observation 4).
package main

import (
	"context"
	"fmt"
	"log"

	"clrdram"
)

func main() {
	opts := clrdram.DefaultOptions()
	opts.TargetInstructions = 150_000

	for _, name := range []string{"462.libquantum-like", "450.soplex-like"} {
		p, ok := clrdram.WorkloadByName(name)
		if !ok {
			log.Fatalf("workload %s not found", name)
		}
		base, err := runSingle(p, clrdram.Baseline(), opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s\n", name)
		fmt.Printf("%8s %12s %12s %12s\n", "HP rows", "coverage", "speedup", "energy")
		for _, frac := range []float64{0.25, 0.50, 0.75, 1.00} {
			res, err := runSingle(p, clrdram.CLR(frac), opts)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%7.0f%% %11.1f%% %11.3fx %11.3fx\n",
				frac*100,
				p.CoverageOfTopFraction(frac)*100,
				res.PerCore[0].IPC()/base.PerCore[0].IPC(),
				res.Energy.Total()/base.Energy.Total())
		}
	}
	fmt.Println("\nUniform access → speedup grows with every added HP row;")
	fmt.Println("skewed access → the first 25% of rows capture most of the benefit.")
}

// runSingle drives one single-core simulation through the unified Run API.
func runSingle(p clrdram.Profile, cfg clrdram.Config, opts clrdram.Options) (clrdram.Result, error) {
	out, err := clrdram.Run(context.Background(), clrdram.SingleSpec(p, cfg), clrdram.WithOptions(opts))
	if err != nil {
		return clrdram.Result{}, err
	}
	return *out.Single, nil
}
