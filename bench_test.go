package clrdram

// One benchmark per paper table and figure (see DESIGN.md §4 for the
// experiment index), plus ablation benches for the design choices the paper
// calls out and microbenchmarks of the simulation substrates.
//
// Figure benches run scaled-down configurations (the shapes survive
// scaling; absolute instruction counts are flag-free to keep `go test
// -bench=.` self-contained). Custom metrics report the reproduced quantity
// (speedup, reduction) alongside ns/op.

import (
	"context"
	"testing"

	"clrdram/internal/cache"
	"clrdram/internal/core"
	"clrdram/internal/dram"
	"clrdram/internal/engine"
	"clrdram/internal/mem"
	"clrdram/internal/sim"
	"clrdram/internal/spice"
	"clrdram/internal/workload"
)

// benchOpts is the scaled-down system configuration for figure benches.
func benchOpts() sim.Options {
	o := sim.DefaultOptions()
	o.TargetInstructions = 60_000
	o.WarmupRecords = 30_000
	o.ProfileRecords = 5_000
	return o
}

func benchProfile(name string) workload.Profile {
	p, ok := workload.ByName(name)
	if !ok {
		panic("unknown workload " + name)
	}
	return p
}

// --- Table 1: circuit-level timing parameters ---

func BenchmarkTable1Timings(b *testing.B) {
	p := spice.Default()
	for i := 0; i < b.N; i++ {
		tab, err := spice.BuildTimingTable(p, spice.TableOptions{Iterations: 3, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric((1-tab.HighPerfET.RCD/tab.Baseline.RCD)*100, "tRCD-reduction-%")
			b.ReportMetric((1-tab.HighPerfET.RAS/tab.Baseline.RAS)*100, "tRAS-reduction-%")
		}
	}
}

// --- Figure 7: activation + precharge waveforms ---

func BenchmarkFig7Waveforms(b *testing.B) {
	p := spice.Default()
	for i := 0; i < b.N; i++ {
		for _, mode := range []spice.Mode{spice.ModeBaseline, spice.ModeHighPerf} {
			if _, _, err := spice.WaveformActPre(p, mode, 0.25e-9); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Figure 8: early termination of charge restoration ---

func BenchmarkFig8EarlyTermination(b *testing.B) {
	p := spice.Default()
	for i := 0; i < b.N; i++ {
		raw, err := spice.Extract(p, spice.ModeHighPerf, p.RestoreFrac*p.VDD)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric((1-raw.RASET/raw.RASFull)*100, "ET-tRAS-saving-%")
		}
	}
}

// --- Figure 11: refresh window vs activation latency ---

func BenchmarkFig11RefreshSweep(b *testing.B) {
	p := spice.Default()
	for i := 0; i < b.N; i++ {
		pts, err := spice.REFWSweep(p, 20)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(pts[len(pts)-1].Ms, "max-tREFW-ms")
		}
	}
}

// --- Figure 12: single-core normalized IPC and DRAM energy ---

func BenchmarkFig12SingleCore(b *testing.B) {
	profiles := []workload.Profile{
		benchProfile("429.mcf-like"),
		benchProfile("random_00"),
		benchProfile("stream_00"),
	}
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		res, err := sim.RunFig12(profiles, opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Rows[0].NormIPC[4], "mcf-speedup-100%")
			b.ReportMetric(res.Rows[0].NormEnergy[4], "mcf-energy-100%")
		}
	}
}

// --- Figure 13: multi-core weighted speedup and energy ---

func BenchmarkFig13MultiCore(b *testing.B) {
	groups := map[string][]workload.Mix{
		"H": {{Name: "H00", Profiles: [4]workload.Profile{
			benchProfile("429.mcf-like"), benchProfile("random_00"),
			benchProfile("stream_00"), benchProfile("462.libquantum-like"),
		}}},
	}
	opts := benchOpts()
	opts.TargetInstructions = 30_000
	for i := 0; i < b.N; i++ {
		res, err := sim.RunFig13(groups, opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.GMeanWS[4], "H-group-WS-100%")
		}
	}
}

// --- Figure 14: DRAM power ---

func BenchmarkFig14Power(b *testing.B) {
	p := benchProfile("random_00")
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		base, err := sim.RunSingle(p, core.Baseline(), opts)
		if err != nil {
			b.Fatal(err)
		}
		clr, err := sim.RunSingle(p, core.CLR(1.0), opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(clr.PowerMW/base.PowerMW, "norm-power-100%")
		}
	}
}

// --- Figure 15: refresh interval sensitivity ---

func BenchmarkFig15RefreshInterval(b *testing.B) {
	profiles := []workload.Profile{benchProfile("random_00")}
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		rows, err := sim.RunFig15(profiles, []float64{1.0}, opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			last := rows[len(rows)-1]
			b.ReportMetric((1-last.NormRefresh[0])*100, "CLR-194-refreshE-saving-%")
		}
	}
}

// --- §6.2: area overhead ---

func BenchmarkAreaOverhead(b *testing.B) {
	m := core.DefaultAreaModel()
	var total float64
	for i := 0; i < b.N; i++ {
		_, _, total = m.Overhead()
	}
	b.ReportMetric(total*100, "area-overhead-%")
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationEarlyTermination compares high-performance mode with and
// without early termination of charge restoration (Table 1's two HP
// columns at the system level).
func BenchmarkAblationEarlyTermination(b *testing.B) {
	p := benchProfile("random_00")
	opts := benchOpts()
	noET := core.CLR(1.0)
	noET.EarlyTermination = false
	for i := 0; i < b.N; i++ {
		with, err := sim.RunSingle(p, core.CLR(1.0), opts)
		if err != nil {
			b.Fatal(err)
		}
		without, err := sim.RunSingle(p, noET, opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(with.PerCore[0].IPC()/without.PerCore[0].IPC(), "ET-speedup")
		}
	}
}

// BenchmarkAblationRowHitCap sweeps the FR-FCFS-Cap row-hit cap.
func BenchmarkAblationRowHitCap(b *testing.B) {
	p := benchProfile("random_00")
	for _, cap := range []int{1, 4, 16} {
		b.Run(bn("cap", cap), func(b *testing.B) {
			opts := benchOpts()
			opts.Mem.RowHitCap = cap
			for i := 0; i < b.N; i++ {
				if _, err := sim.RunSingle(p, core.CLR(1.0), opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMappingScheme compares the two address-interleaving
// policies of §5.1.
func BenchmarkAblationMappingScheme(b *testing.B) {
	p := benchProfile("stream_00")
	for _, scheme := range []mem.Scheme{mem.SchemeRowBankCol, mem.SchemeRowColBank} {
		b.Run(scheme.String(), func(b *testing.B) {
			opts := benchOpts()
			opts.Mem.Scheme = scheme
			for i := 0; i < b.N; i++ {
				if _, err := sim.RunSingle(p, core.Baseline(), opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Substrate microbenchmarks ---

func BenchmarkDeviceACTPRECycle(b *testing.B) {
	cfg := dram.Standard16Gb()
	cfg.Timings[dram.ModeDefault] = dram.DDR4BaselineNS().ToCycles(cfg.ClockNS)
	d := dram.NewDevice(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		act := dram.Command{Kind: dram.KindACT, Bank: i % 16, Row: i & 0xFFFF}
		for !d.CanIssue(act) {
			d.Tick()
		}
		d.Issue(act)
		pre := dram.Command{Kind: dram.KindPRE, Bank: i % 16}
		for !d.CanIssue(pre) {
			d.Tick()
		}
		d.Issue(pre)
	}
}

func BenchmarkControllerTick(b *testing.B) {
	cfg := dram.Standard16Gb()
	cfg.Timings[dram.ModeDefault] = dram.DDR4BaselineNS().ToCycles(cfg.ClockNS)
	dev := dram.NewDevice(cfg)
	ctrl, err := mem.NewController(dev, mem.Config{})
	if err != nil {
		b.Fatal(err)
	}
	addr := uint64(12345)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr = addr*6364136223846793005 + 1442695040888963407
		ctrl.Enqueue(&mem.Request{Addr: addr % (1 << 30), Write: i%4 == 0})
		ctrl.Tick()
	}
}

func BenchmarkLLCAccess(b *testing.B) {
	c := cache.New(cache.Config{})
	addr := uint64(98765)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr = addr*6364136223846793005 + 1442695040888963407
		a := addr % (16 << 20)
		if c.Access(a, false, nil) == cache.Miss {
			c.Fill(c.LineAddr(a))
		}
	}
}

func BenchmarkTraceGeneration(b *testing.B) {
	p := benchProfile("429.mcf-like")
	rd := p.NewReader(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rd.Next(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCircuitStep(b *testing.B) {
	p := spice.Default()
	s, err := spice.Build(p, spice.ModeHighPerf)
	if err != nil {
		b.Fatal(err)
	}
	s.InitData(true, p.RestoreFrac*p.VDD)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Circuit().Step(p.Dt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEndToEndSimulatedInstructions(b *testing.B) {
	// Reports simulator throughput in simulated instructions per second.
	p := benchProfile("stream_00")
	opts := benchOpts()
	b.ResetTimer()
	var instr uint64
	for i := 0; i < b.N; i++ {
		res, err := sim.RunSingle(p, core.CLR(1.0), opts)
		if err != nil {
			b.Fatal(err)
		}
		instr += res.PerCore[0].Instructions
	}
	b.ReportMetric(float64(instr)/b.Elapsed().Seconds(), "sim-instr/s")
}

// --- internal/sim: next-event fast-forward ---
//
// Mode triples run the identical workload under the three fast-forward
// modes (results are bit-identical by construction — see
// TestFastForwardIdentityAllProfiles). The compute-bound profile is the
// headline case: long pure-bubble stretches collapse into bulk skips, so
// the planner should show it well over 1.5× faster than the per-cycle
// loop. The memory-intensive profile bounds the other end, where horizons
// are short and planning mostly breaks even; the adaptive governor's job
// there is to hold parity with planner-off. cmd/ffbench runs the same
// comparison with interleaved rounds and CPU-time minima (`make bench-ff`)
// — these benchmarks are the `go test -bench` view of it.

func benchFastForward(b *testing.B, name string, mode sim.FFMode) {
	p := benchProfile(name)
	opts := benchOpts()
	// A longer run than the figure benches: the quantity under test is the
	// steady-state cycle loop, so keep the fixed setup cost (trace profiling
	// and cache warmup) small relative to the simulated region.
	opts.TargetInstructions = 1_000_000
	opts.WarmupRecords = 2_000
	opts.ProfileRecords = 2_000
	opts.FastForward = mode
	b.ResetTimer()
	var instr uint64
	for i := 0; i < b.N; i++ {
		res, err := sim.RunSingle(p, core.CLR(0.5), opts)
		if err != nil {
			b.Fatal(err)
		}
		instr += res.PerCore[0].Instructions
	}
	b.ReportMetric(float64(instr)/b.Elapsed().Seconds(), "sim-instr/s")
}

func BenchmarkFastForwardComputeBoundOn(b *testing.B) {
	benchFastForward(b, "416.gamess-like", sim.FFAlways)
}

func BenchmarkFastForwardComputeBoundAdaptive(b *testing.B) {
	benchFastForward(b, "416.gamess-like", sim.FFAdaptive)
}

func BenchmarkFastForwardComputeBoundOff(b *testing.B) {
	benchFastForward(b, "416.gamess-like", sim.FFOff)
}

func BenchmarkFastForwardMemIntensiveOn(b *testing.B) {
	benchFastForward(b, "429.mcf-like", sim.FFAlways)
}

func BenchmarkFastForwardMemIntensiveAdaptive(b *testing.B) {
	benchFastForward(b, "429.mcf-like", sim.FFAdaptive)
}

func BenchmarkFastForwardMemIntensiveOff(b *testing.B) {
	benchFastForward(b, "429.mcf-like", sim.FFOff)
}

// bn formats a sub-benchmark name.
func bn(k string, v int) string {
	return k + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// --- internal/engine: serial vs parallel experiment execution ---
//
// The serial/parallel pairs below share identical work (and, by the
// engine's determinism contract, identical results); BENCH_*.json diffs
// capture the speedup trajectory as core counts grow. At 4+ cores the
// parallel variants should run ≥ 2× faster; on a single-core host they
// degenerate to the serial cost plus negligible pool overhead.

const benchMCIters = 8

func benchMonteCarlo(b *testing.B, workers int) {
	p := spice.Default()
	for i := 0; i < b.N; i++ {
		if _, err := spice.MonteCarloPool(context.Background(), engine.NewPool(workers),
			p, spice.ModeHighPerf, benchMCIters, 1, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMonteCarloSerial(b *testing.B)   { benchMonteCarlo(b, 1) }
func BenchmarkMonteCarloParallel(b *testing.B) { benchMonteCarlo(b, 0) } // 0 = GOMAXPROCS

func benchFig12Workers(b *testing.B, workers int) {
	profiles := []workload.Profile{
		benchProfile("429.mcf-like"),
		benchProfile("random_00"),
		benchProfile("stream_00"),
	}
	opts := benchOpts()
	opts.Workers = workers
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunFig12(profiles, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12Serial(b *testing.B)   { benchFig12Workers(b, 1) }
func BenchmarkFig12Parallel(b *testing.B) { benchFig12Workers(b, 0) } // 0 = GOMAXPROCS

// --- internal/metrics: observability overhead ---
//
// StatsOff/StatsOn run the identical Fig. 12 sweep with the metrics
// registry disabled and enabled; comparing their ns/op bounds the cost of
// the observability layer (target: < 5% — the hot-path instruments are
// plain counter increments and one histogram bucket index per cycle).

func benchFig12Stats(b *testing.B, collect bool) {
	profiles := []workload.Profile{
		benchProfile("429.mcf-like"),
		benchProfile("random_00"),
		benchProfile("stream_00"),
	}
	opts := benchOpts()
	opts.Workers = 1
	opts.CollectStats = collect
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunFig12(profiles, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12StatsOff(b *testing.B) { benchFig12Stats(b, false) }
func BenchmarkFig12StatsOn(b *testing.B)  { benchFig12Stats(b, true) }

// --- §9: related-design comparison ---

// BenchmarkSection9Comparison runs the quantitative version of the paper's
// related-work discussion: CLR-DRAM vs Twin-Cell vs MCR-DRAM vs TL-DRAM.
func BenchmarkSection9Comparison(b *testing.B) {
	profiles := []workload.Profile{benchProfile("random_00")}
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		rows, err := sim.RunComparison(profiles, 1.0, opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Design == core.DesignCLRDRAM {
					b.ReportMetric(r.NormIPC, "CLR-norm-IPC")
				}
				if r.Design == core.DesignTwinCell {
					b.ReportMetric(r.NormIPC, "TwinCell-norm-IPC")
				}
			}
		}
	}
}

// BenchmarkAblationRefreshPostponement compares the paper's conservative
// refresh (a due REF preempts immediately) against DDR4's postponement
// mechanism (defer up to 8 intervals while traffic is pending).
func BenchmarkAblationRefreshPostponement(b *testing.B) {
	p := benchProfile("random_00")
	for _, postpone := range []int{0, 8} {
		b.Run(bn("postpone", postpone), func(b *testing.B) {
			opts := benchOpts()
			opts.Mem.MaxPostponedRefresh = postpone
			var ipc float64
			for i := 0; i < b.N; i++ {
				res, err := sim.RunSingle(p, core.CLR(1.0), opts)
				if err != nil {
					b.Fatal(err)
				}
				ipc = res.PerCore[0].IPC()
			}
			b.ReportMetric(ipc, "IPC")
		})
	}
}

// BenchmarkDynamicReconfiguration measures the cost of a live 0%→100%→0%
// round trip, including the stop-the-world page migration.
func BenchmarkDynamicReconfiguration(b *testing.B) {
	opts := benchOpts()
	opts.TargetInstructions = 1 << 62
	p := workload.Profile{
		Name: "bench-dyn", Pattern: workload.PatternRandom,
		FootprintPages: 1024, BubbleMean: 6, WriteFrac: 0.25,
	}
	s, err := sim.NewSystem([]workload.Profile{p}, core.CLR(0), opts)
	if err != nil {
		b.Fatal(err)
	}
	s.RunFor(5_000)
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		up, err := s.Reconfigure(core.CLR(1.0))
		if err != nil {
			b.Fatal(err)
		}
		down, err := s.Reconfigure(core.CLR(0))
		if err != nil {
			b.Fatal(err)
		}
		cycles = up.MigrationCycles + down.MigrationCycles
	}
	b.ReportMetric(float64(cycles), "migration-cpu-cycles/roundtrip")
}
