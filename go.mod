module clrdram

go 1.22
