# Tiered checks. tier1 is the seed gate (ROADMAP.md); race adds the race
# detector over the full suite — required on every PR now that the
# experiment engine fans simulations out across goroutines. check adds a
# gofmt cleanliness gate on top of both tiers.

.PHONY: all tier1 race check fmt bench report

all: check

tier1:
	go build ./...
	go vet ./...
	go test ./...

race:
	go test -race ./...

# fmt fails (listing the offending files) if any file needs gofmt.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

check: tier1 race fmt

bench:
	go test -bench=. -benchmem -run=^$$ .

# report runs a short canned experiment and emits its observability
# report as JSON (see OBSERVABILITY.md for the schema).
report:
	go run ./cmd/clrsim -workload 429.mcf-like -hp 0.5 \
		-instructions 200000 -stats-out -
