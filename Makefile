# Tiered checks. tier1 is the seed gate (ROADMAP.md); race adds the race
# detector over the full suite — required on every PR now that the
# experiment engine fans simulations out across goroutines. check adds a
# gofmt cleanliness gate, a docs gate, and five explicit end-to-end gates
# on top of both tiers: ffdiff (fast-forward vs ticked simulation), ckdiff
# (compiled + batched circuit kernels vs interpreted loop), serve-smoke
# (clrserve daemon report vs direct sim.Run, byte-identical), compdiff
# (registry-composed default memory system vs the seed, bit-identical),
# and ffbench-smoke (adaptive fast-forward must not lose to planner-off on
# the memory-intensive profile).

.PHONY: all tier1 race check fmt docs-check ffdiff ckdiff serve-smoke compdiff ffbench-smoke bench bench-ff bench-circuit report

all: check

tier1:
	go build ./...
	go vet ./...
	go test ./...

# race runs the simulator package first and by itself: the decoupled
# fast-forward stretch (DESIGN.md §15) shares core/controller state with the
# worker-fanned experiment engine, so its identity and lag-invariant tests are
# the suite's most race-sensitive surface. The second line covers the rest of
# the tree without re-running it.
race:
	go test -race ./internal/sim/...
	go test -race $$(go list ./... | grep -v '/internal/sim')

# fmt fails (listing the offending files) if any file needs gofmt.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# docs-check is the documentation gate: gofmt cleanliness, go vet, and a
# godoc audit that every exported top-level identifier in the solver
# packages (internal/circuit, internal/spice) carries a doc comment — the
# batched-kernel PR's documentation pass keeps these two packages fully
# navigable from godoc alone.
docs-check: fmt
	go vet ./internal/circuit/ ./internal/spice/
	@bad="$$(awk 'FNR==1{prev=""} \
		/^(func|type|var|const) [A-Z]/ || /^func \([a-z] \*?[A-Z][A-Za-z0-9]*\) [A-Z]/ { \
			if (prev !~ /^\/\//) print FILENAME":"FNR": "$$0 } \
		{prev=$$0}' $$(ls internal/circuit/*.go internal/spice/*.go | grep -v _test))"; \
	if [ -n "$$bad" ]; then \
		echo "exported identifiers missing doc comments:"; echo "$$bad"; exit 1; fi

# ffdiff proves the next-event fast-forward path bit-identical to the
# ticked loop: same Result, same canonical RunReport, same figure CSVs,
# across the full 71-profile workload set, a 4-core mix, an end-to-end
# Fig. 12 CSV (DESIGN.md §9), and — for the decoupled per-core lag path
# (DESIGN.md §15) — the heterogeneous-mix matrix (1mcf+3gamess,
# 2mcf+2gamess, 4×random under both planner modes, plus an experiment-level
# sweep at workers 1 and 4), the RunFor retirement-ceiling legs, and the
# flush-boundary twin invariant. Also part of `go test ./...`; called out
# here so `make check` names the property it guards.
ffdiff:
	go test ./internal/sim -run 'TestFastForwardIdentity|TestDecoupled|TestAccumulator' -count=1

# ckdiff proves the compiled circuit-stepping kernel AND the batched
# K-draw kernel bit-identical to the interpreted reference loop: exact
# RawTimings equality over every netlist (6 modes × activate/precharge/
# write, nominal + Monte Carlo variation draws + the refresh-window
# sweep), the in-place Reparam path vs rebuilding from scratch,
# kernel-level stepwise identity under post-compile mutation, batched
# extraction vs the single-instance path at several widths, Monte Carlo
# invariance under the batch width, per-lane failure isolation, and the
# CheckStride overshoot bound on all three paths (DESIGN.md §10, §12).
# Ends with a K>1 smoke run of the shipped binary. Also part of
# `go test ./...`.
ckdiff:
	go test ./internal/spice -run 'TestCompiledIdentity|TestReparamMatchesRebuild|TestBatchExtract|TestMonteCarloBatchWidthIdentity|TestCheckStrideOvershootBound' -count=1
	go test ./internal/circuit -run 'TestKernelIdentity|TestRecompile|TestBatch' -count=1
	go run ./cmd/circuitsim -ckbatch 4 -iters 64 -table1 >/dev/null

# serve-smoke is the end-to-end determinism gate of the clrserve daemon:
# start it on a random port, submit a tiny Fig. 12 sweep over HTTP, poll
# to completion, and byte-diff the fetched report against the canonical
# report of a direct sim.Run with the same spec and options, then shut
# down cleanly (SERVING.md). The same property is also enforced
# in-process by TestServerReportMatchesDirectRun in `go test ./...`.
serve-smoke:
	go run ./cmd/clrserve -smoke

# compdiff is the composable-API identity gate (DESIGN.md §14): the
# registry-driven construction path must leave the paper's default
# composition bit-identical — a zero configuration and one with every
# default registry name (standard, scheduler, row policy, mapper) spelled
# out explicitly produce the same Result, canonical RunReport, and Fig. 12
# CSV bytes at any worker count — and every scheduler × row-policy pair
# must stay fast-forward/ticked bit-identical on the four-core mix. Also
# part of `go test ./...`.
compdiff:
	go test ./internal/sim -run 'TestDefaultComposition|TestCompositionIdentityMatrix' -count=1

# ffbench-smoke is the fast-forward performance gate: a short interleaved
# off-vs-adaptive measurement on the memory-intensive profile asserting the
# adaptive governor keeps planner overhead from dragging throughput below
# the plain per-cycle loop (within a small noise tolerance).
ffbench-smoke:
	go run ./cmd/ffbench -smoke -instructions 300000

check: tier1 race fmt docs-check ffdiff ckdiff serve-smoke compdiff ffbench-smoke

bench:
	go test -bench=. -benchmem -run=^$$ .

# bench-ff measures the fast-forward payoff across all three modes (off,
# always-on, adaptive) over the compute-bound, memory-intensive, and random
# single-core profiles plus the heterogeneous multi-core mixes the decoupled
# lag path targets, and writes BENCH_ff.json (EXPERIMENTS.md tables W4/W6).
bench-ff:
	go run ./cmd/ffbench -out BENCH_ff.json

# bench-circuit measures the compiled stepping kernel against the seed
# configuration (interpreted loop, stop condition checked every step) at
# three granularities — raw step, full extraction, parallel Monte Carlo
# campaign — then sweeps the campaign over batch widths (interleaved
# rounds, per-width minima as the least-interference estimate) and
# writes BENCH_circuit.json (EXPERIMENTS.md tables W2 and W3).
bench-circuit:
	go run ./cmd/circuitsim -bench -bench-out BENCH_circuit.json

# report runs a short canned experiment and emits its observability
# report as JSON (see OBSERVABILITY.md for the schema).
report:
	go run ./cmd/clrsim -workload 429.mcf-like -hp 0.5 \
		-instructions 200000 -stats-out -
