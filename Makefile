# Tiered checks. tier1 is the seed gate (ROADMAP.md); race adds go vet and
# the race detector over the full suite — required on every PR now that the
# experiment engine fans simulations out across goroutines.

.PHONY: all tier1 race check bench

all: check

tier1:
	go build ./...
	go test ./...

race:
	go vet ./...
	go test -race ./...

check: tier1 race

bench:
	go test -bench=. -benchmem -run=^$$ .
